/**
 * @file
 * Tests for the reentrant SchedulerCore: quantum-bounded stepping,
 * bit-identity of a stepped run against run-to-completion at any
 * threads= and fast_path= setting, mid-quantum checkpointability,
 * cooperative preemption points and the launch-state guards.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/gpu_top.hh"
#include "gpu/scheduler_core.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "sim/parallel_executor.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"

namespace equalizer
{
namespace
{

/** Exported-JSON form of a run's metrics (the figures' data). */
std::string
jsonOf(const std::string &kernel, const RunMetrics &m)
{
    MetricsExporter e;
    e.addResult(kernel, "test", m, {m});
    std::ostringstream os;
    return (e.writeJson(os), os.str());
}

/** Equalizer tuned so decisions churn within short runs. */
PolicySpec
churnyEqualizer()
{
    EqualizerConfig ecfg;
    ecfg.epochCycles = 512;
    ecfg.sampleInterval = 64;
    return policies::equalizer(EqualizerMode::Performance, ecfg);
}

TEST(StepStatus, ToStringNamesEveryState)
{
    EXPECT_STREQ(toString(StepStatus::Running), "running");
    EXPECT_STREQ(toString(StepStatus::Drained), "drained");
    EXPECT_STREQ(toString(StepStatus::PreemptPoint), "preempt-point");
}

TEST(SchedulerCoreDeath, StepWithoutLaunchIsFatal)
{
    EXPECT_EXIT(
        {
            GpuTop gpu;
            SchedulerCore core(gpu);
            core.step();
        },
        ::testing::ExitedWithCode(1), "no run armed");
}

/**
 * A Running step lands exactly on its quantum boundary: the slow path
 * ticks one SM cycle at a time and fast-path skips are clamped to the
 * boundary, so step(n) advances exactly n SM cycles while work
 * remains — under both fast_path settings.
 */
TEST(SchedulerCore, StepLandsExactlyOnTheQuantumBoundary)
{
    for (const bool fast_path : {false, true}) {
        GpuConfig gcfg = GpuConfig::gtx480();
        gcfg.fastPath = fast_path;
        GpuTop gpu(gcfg, PowerConfig::gtx480());
        SchedulerCore core(gpu);
        SyntheticKernel launch(KernelZoo::byName("sgemm").params, 0);
        core.launchKernel(launch);

        for (const Cycle quantum : {Cycle(1), Cycle(7), Cycle(640)}) {
            const Cycle before = gpu.smDomain().cycle();
            ASSERT_EQ(core.step(quantum), StepStatus::Running)
                << "fast_path=" << fast_path;
            EXPECT_EQ(gpu.smDomain().cycle() - before, quantum)
                << "fast_path=" << fast_path;
        }
        core.run();
        core.finish();
    }
}

TEST(SchedulerCore, ActiveTracksTheRunLifetime)
{
    GpuTop gpu;
    SchedulerCore core(gpu);
    EXPECT_FALSE(core.active());
    SyntheticKernel launch(KernelZoo::byName("sgemm").params, 0);
    core.launchKernel(launch);
    EXPECT_TRUE(core.active());
    EXPECT_EQ(core.step(128), StepStatus::Running);
    EXPECT_TRUE(core.active());
    core.run();
    EXPECT_TRUE(core.active()); // drained but not yet finished
    const RunMetrics m = core.finish();
    EXPECT_GT(m.instructions, 0u);
    EXPECT_FALSE(core.active());
}

/**
 * requestPreempt() is sticky until the next step(), which pauses
 * before advancing a single edge and consumes the request; the step
 * after that proceeds normally.
 */
TEST(SchedulerCore, RequestPreemptPausesWithoutAdvancing)
{
    GpuTop gpu;
    SchedulerCore core(gpu);
    SyntheticKernel launch(KernelZoo::byName("sgemm").params, 0);
    core.launchKernel(launch);
    ASSERT_EQ(core.step(256), StepStatus::Running);

    core.requestPreempt();
    const Cycle at = gpu.smDomain().cycle();
    EXPECT_EQ(core.step(256), StepStatus::PreemptPoint);
    EXPECT_EQ(gpu.smDomain().cycle(), at); // paused on the edge

    // Delivered at most once: the next step runs a full quantum.
    EXPECT_EQ(core.step(256), StepStatus::Running);
    EXPECT_EQ(gpu.smDomain().cycle(), at + 256);
    core.run();
    core.finish();
}

struct SteppedCase
{
    const char *kernel;
    int threads;
    bool fastPath;
};

class SteppedRun : public ::testing::TestWithParam<SteppedCase>
{
};

/**
 * The refactor's core guarantee: a run advanced through an arbitrary
 * (and deliberately irregular) sequence of step() quanta is
 * bit-identical to the legacy run-to-completion call — exported
 * metrics and trace bytes — at any threads= and fast_path= setting.
 */
TEST_P(SteppedRun, IsByteIdenticalToRunToCompletion)
{
    const auto [kernel_name, threads, fast_path] = GetParam();
    const KernelParams &params = KernelZoo::byName(kernel_name).params;
    GpuConfig gcfg = GpuConfig::gtx480();
    gcfg.fastPath = fast_path;
    const PowerConfig pcfg = PowerConfig::gtx480();
    const PolicySpec policy = churnyEqualizer();
    TraceConfig tcfg;
    tcfg.epochCycles = 512;

    // Reference: the thin-client GpuTop::runKernel().
    MemoryTraceSink ref_sink;
    Tracer ref_tracer(tcfg, ref_sink);
    std::string ref_json;
    {
        std::unique_ptr<ParallelExecutor> exec;
        if (threads > 1)
            exec = std::make_unique<ParallelExecutor>(threads);
        GpuTop gpu(gcfg, pcfg);
        gpu.setParallelExecutor(exec.get());
        gpu.setTracer(&ref_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        SyntheticKernel launch(params, 0);
        ref_json = jsonOf(params.name, gpu.runKernel(launch));
    }
    ref_tracer.finish();

    // Stepped: same device, advanced through irregular quanta.
    MemoryTraceSink step_sink;
    Tracer step_tracer(tcfg, step_sink);
    std::string step_json;
    {
        std::unique_ptr<ParallelExecutor> exec;
        if (threads > 1)
            exec = std::make_unique<ParallelExecutor>(threads);
        GpuTop gpu(gcfg, pcfg);
        gpu.setParallelExecutor(exec.get());
        gpu.setTracer(&step_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        SyntheticKernel launch(params, 0);
        SchedulerCore core(gpu);
        core.launchKernel(launch);
        const Cycle quanta[] = {1, 911, 64, 7, 4096, 513};
        std::size_t q = 0;
        while (core.step(quanta[q % 6]) != StepStatus::Drained)
            ++q;
        step_json = jsonOf(params.name, core.finish());
    }
    step_tracer.finish();

    EXPECT_EQ(ref_json, step_json);
    EXPECT_EQ(ref_sink.serialize(), step_sink.serialize());
}

INSTANTIATE_TEST_SUITE_P(
    KernelZoo, SteppedRun,
    ::testing::Values(SteppedCase{"lbm", 1, true},
                      SteppedCase{"lbm", 4, true},
                      SteppedCase{"lbm", 1, false},
                      SteppedCase{"kmn", 1, true},
                      SteppedCase{"kmn", 4, true},
                      SteppedCase{"kmn", 4, false}),
    [](const auto &info) {
        return std::string(info.param.kernel) + "_threads" +
               std::to_string(info.param.threads) +
               (info.param.fastPath ? "_fp1" : "_fp0");
    });

/**
 * The quantum boundary is a checkpointable device state: a buffer
 * saved between two step() calls restores into a fresh device whose
 * finished run exports byte-identically to the donor's.
 */
TEST(SchedulerCore, MidQuantumCheckpointRestoresByteIdentically)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    const PolicySpec policy = churnyEqualizer();

    std::vector<std::uint8_t> saved;
    std::string donor_json;
    {
        GpuTop donor;
        const auto ctrl = policy.build();
        donor.setController(ctrl.get());
        SyntheticKernel launch(params, 0);
        SchedulerCore core(donor);
        core.launchKernel(launch);
        ASSERT_EQ(core.step(1800), StepStatus::Running);
        ASSERT_EQ(donor.smDomain().cycle(), 1800u);
        saved = donor.saveStateBuffer();
        core.run();
        donor_json = jsonOf(params.name, core.finish());
    }
    ASSERT_FALSE(saved.empty());

    GpuTop restored;
    const auto ctrl = policy.build();
    restored.setController(ctrl.get());
    restored.loadStateBuffer(saved);
    ASSERT_TRUE(restored.midKernel());
    EXPECT_EQ(restored.smDomain().cycle(), 1800u);
    SyntheticKernel launch(params, 0);
    SchedulerCore core(restored);
    core.adoptResumedKernel(launch);
    core.run();
    EXPECT_EQ(donor_json, jsonOf(params.name, core.finish()));
}

} // namespace
} // namespace equalizer
