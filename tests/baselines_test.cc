/**
 * @file
 * Tests for the comparison baselines: StaticPolicy, DynCTA and CCWS.
 */

#include <gtest/gtest.h>

#include "baselines/ccws.hh"
#include "baselines/dyncta.hh"
#include "baselines/static_policy.hh"
#include "gpu/gpu_top.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;

GpuConfig
smallGpu(int sms = 4)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    return cfg;
}

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name)
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

// ---------------------------------------------------------- StaticPolicy

TEST(StaticPolicy, AppliesOperatingPointsAtLaunch)
{
    GpuTop gpu(smallGpu());
    StaticPolicy policy("test", VfState::High, VfState::Low);
    gpu.setController(&policy);
    std::vector<WarpInstruction> script(3000, aluInst());
    ScriptedKernel k(info(8, 4, 4, "t"), script);
    gpu.runKernel(k);
    EXPECT_EQ(gpu.smDomain().state(), VfState::High);
    EXPECT_EQ(gpu.memDomain().state(), VfState::Low);
}

TEST(StaticPolicy, AppliesBlockTarget)
{
    GpuTop gpu(smallGpu());
    StaticPolicy policy("blocks-2", VfState::Normal, VfState::Normal, 2);
    gpu.setController(&policy);
    std::vector<WarpInstruction> script(2000, aluInst());
    ScriptedKernel k(info(64, 4, 8, "t"), script);
    bool checked = false;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (checked || g.smDomain().cycle() % 100 != 50)
            return;
        checked = true;
        for (int s = 0; s < g.numSms(); ++s) {
            EXPECT_EQ(g.sm(s).targetBlocks(), 2);
            EXPECT_LE(g.sm(s).unpausedBlocks(), 2);
        }
    });
    gpu.runKernel(k);
    EXPECT_TRUE(checked);
    EXPECT_EQ(policy.name(), "blocks-2");
}

TEST(StaticPolicy, FewerBlocksRunsSlowerOnLatencyBoundKernel)
{
    // Serial dependence chains: one block (4 warps) cannot cover the
    // ALU result latency, so throttling concurrency costs time.
    std::vector<WarpInstruction> script(800, aluInst(true));
    ScriptedKernel k(info(64, 4, 8, "t"), script);

    GpuTop full(smallGpu());
    StaticPolicy max_policy("max", VfState::Normal, VfState::Normal);
    full.setController(&max_policy);
    const auto base = full.runKernel(k);

    GpuTop throttled(smallGpu());
    StaticPolicy one("blocks-1", VfState::Normal, VfState::Normal, 1);
    throttled.setController(&one);
    const auto slow = throttled.runKernel(k);

    EXPECT_GT(slow.seconds, base.seconds * 1.5);
}

// ---------------------------------------------------------------- DynCTA

TEST(DynCta, ReducesBlocksUnderMemoryStall)
{
    GpuTop gpu(smallGpu());
    DynCta dyncta;
    gpu.setController(&dyncta);

    std::vector<WarpInstruction> script;
    for (int i = 0; i < 400; ++i) {
        WarpInstruction ld = loadInst(0);
        ld.transactionCount = 2;
        ld.lineAddrs[0] = static_cast<Addr>(i) * 2 * 128;
        ld.lineAddrs[1] = ld.lineAddrs[0] + 128;
        script.push_back(ld);
        script.push_back(loadUse());
    }
    ScriptedKernel k(
        info(64, 4, 8, "mem"), [script](BlockId b, int w) {
            auto s = script;
            for (auto &inst : s)
                if (inst.op == OpClass::Mem)
                    for (int t = 0; t < inst.transactionCount; ++t)
                        inst.lineAddrs[static_cast<std::size_t>(t)] +=
                            (static_cast<Addr>(b) * 64 +
                             static_cast<Addr>(w))
                            << 24;
            return s;
        });
    int min_target = 8;
    gpu.setCycleObserver([&](GpuTop &g) {
        min_target = std::min(min_target, g.sm(0).targetBlocks());
    });
    gpu.runKernel(k);
    EXPECT_LT(min_target, 8);
    EXPECT_GT(dyncta.blockChanges(), 0u);
}

TEST(DynCta, LeavesComputeKernelAlone)
{
    GpuTop gpu(smallGpu());
    DynCta dyncta;
    gpu.setController(&dyncta);
    std::vector<WarpInstruction> script(20000, aluInst());
    ScriptedKernel k(info(16, 4, 4, "comp"), script);
    int min_target = 8;
    gpu.setCycleObserver([&](GpuTop &g) {
        min_target = std::min(min_target, g.sm(0).targetBlocks());
    });
    gpu.runKernel(k);
    // Compute kernels have few memory stalls: no throttling.
    EXPECT_EQ(min_target, 4);
}

TEST(DynCta, NameIsStable)
{
    DynCta d;
    EXPECT_EQ(d.name(), "dyncta");
}

// ------------------------------------------------------------------ CCWS

TEST(Ccws, DetectsLostLocalityAndThrottles)
{
    GpuTop gpu(smallGpu(1));
    Ccws ccws;
    gpu.setController(&ccws);

    // Each warp loops over a private working set much larger than its
    // fair share of the L1: classic inter-warp thrashing.
    ScriptedKernel k(info(8, 8, 8, "thrash"), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        const Addr base = (static_cast<Addr>(b) * 8 + static_cast<Addr>(w))
                          << 20;
        for (int rep = 0; rep < 60; ++rep)
            for (int l = 0; l < 24; ++l) {
                s.push_back(loadInst(base + static_cast<Addr>(l) * 128));
                s.push_back(loadUse());
            }
        return s;
    });
    gpu.runKernel(k);
    EXPECT_GT(ccws.lostLocalityEvents(), 0u);
}

TEST(Ccws, AllowedWarpsNeverBelowMinimum)
{
    GpuTop gpu(smallGpu(1));
    CcwsConfig cfg;
    cfg.minAllowedWarps = 2;
    Ccws ccws(cfg);
    gpu.setController(&ccws);
    ScriptedKernel k(info(8, 8, 8, "thrash2"), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        const Addr base = (static_cast<Addr>(b) * 8 + static_cast<Addr>(w))
                          << 20;
        for (int rep = 0; rep < 40; ++rep)
            for (int l = 0; l < 24; ++l) {
                s.push_back(loadInst(base + static_cast<Addr>(l) * 128));
                s.push_back(loadUse());
            }
        return s;
    });
    int min_allowed = 1000;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (g.smDomain().cycle() % 64 == 0)
            min_allowed = std::min(min_allowed, ccws.allowedWarps(0));
    });
    gpu.runKernel(k);
    EXPECT_GE(min_allowed, cfg.minAllowedWarps);
}

TEST(Ccws, NoThrottlingWithoutLocalityLoss)
{
    GpuTop gpu(smallGpu(1));
    Ccws ccws;
    gpu.setController(&ccws);
    // Streaming kernel: misses, but never re-references evicted lines.
    ScriptedKernel k(info(8, 8, 8, "stream"), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        const Addr base = (static_cast<Addr>(b) * 8 + static_cast<Addr>(w))
                          << 24;
        for (int i = 0; i < 200; ++i) {
            s.push_back(loadInst(base + static_cast<Addr>(i) * 128));
            s.push_back(loadUse());
        }
        return s;
    });
    int min_allowed = 1000;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (g.smDomain().cycle() % 64 == 0)
            min_allowed = std::min(min_allowed, ccws.allowedWarps(0));
    });
    gpu.runKernel(k);
    EXPECT_EQ(ccws.lostLocalityEvents(), 0u);
    // 6 resident blocks (48-warp SM limit) x 8 warps, never throttled.
    EXPECT_EQ(min_allowed, 48);
}

} // namespace
} // namespace equalizer
