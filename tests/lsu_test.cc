/**
 * @file
 * Unit tests for the load/store unit.
 */

#include <gtest/gtest.h>

#include "gpu/lsu.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::loadInst;
using testing::storeInst;

class LsuTest : public ::testing::Test
{
  protected:
    LsuTest()
        : energy(PowerConfig::gtx480()), mem(cfg.mem, 1, energy),
          l1(cfg.mem, 0, mem.smInjectQueue(0), energy),
          lsu(cfg, 0, l1, mem)
    {
    }

    GpuConfig cfg = GpuConfig::gtx480();
    EnergyModel energy;
    MemorySystem mem;
    L1Cache l1;
    LoadStoreUnit lsu;
};

TEST_F(LsuTest, AcceptsAtMostOnePerCycle)
{
    lsu.beginCycle();
    ASSERT_TRUE(lsu.canAccept());
    lsu.accept(0, loadInst(0x1000));
    EXPECT_FALSE(lsu.canAccept());
    lsu.beginCycle();
    EXPECT_TRUE(lsu.canAccept());
}

TEST_F(LsuTest, QueueDepthLimitsAcceptance)
{
    for (int i = 0; i < cfg.lsuQueueDepth; ++i) {
        lsu.beginCycle();
        ASSERT_TRUE(lsu.canAccept()) << "entry " << i;
        lsu.accept(i, loadInst(static_cast<Addr>(i) * 128));
    }
    lsu.beginCycle();
    EXPECT_FALSE(lsu.canAccept());
}

TEST_F(LsuTest, ProcessesTransactionsAtThroughput)
{
    WarpInstruction wide = loadInst(0);
    wide.transactionCount = 4;
    for (int t = 0; t < 4; ++t)
        wide.lineAddrs[static_cast<std::size_t>(t)] =
            static_cast<Addr>(t) * 128;
    lsu.beginCycle();
    lsu.accept(0, wide);
    lsu.tick(1);
    EXPECT_EQ(lsu.transactionsIssued(),
              static_cast<std::uint64_t>(cfg.lsuThroughput));
    lsu.tick(2);
    EXPECT_EQ(lsu.transactionsIssued(), 4u);
    EXPECT_TRUE(lsu.empty());
}

TEST_F(LsuTest, HitWakeupArrivesAfterL1Latency)
{
    // Prime the line so the access hits.
    l1.access(9, 0x3000, false);
    l1.fill(0x3000);

    lsu.beginCycle();
    lsu.accept(3, loadInst(0x3000));
    lsu.tick(10);
    EXPECT_TRUE(lsu.drainHitWakeups(10).empty());
    const Cycle ready = 10 + cfg.mem.l1HitLatency;
    EXPECT_TRUE(lsu.drainHitWakeups(ready - 1).empty());
    const auto woken = lsu.drainHitWakeups(ready);
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], 3);
}

TEST_F(LsuTest, HeadBlocksWhenDownstreamFull)
{
    // Fill the SM's injection queue directly.
    auto &q = mem.smInjectQueue(0);
    Addr a = 0x100000;
    while (!q.full()) {
        q.push(MemAccess{a, 0, 0, false, false});
        a += 128;
    }
    // Also exhaust nothing else; a store needs queue space and blocks.
    lsu.beginCycle();
    lsu.accept(0, storeInst(0x5000));
    lsu.tick(1);
    EXPECT_FALSE(lsu.empty());
    EXPECT_GT(lsu.blockedCycles(), 0u);
    // Drain one slot; the store proceeds.
    q.pop();
    lsu.tick(2);
    EXPECT_TRUE(lsu.empty());
}

TEST_F(LsuTest, TextureBypassesL1)
{
    WarpInstruction tex = loadInst(0x9000);
    tex.texture = true;
    lsu.beginCycle();
    lsu.accept(2, tex);
    lsu.tick(1);
    EXPECT_EQ(l1.hits() + l1.misses(), 0u);
    EXPECT_EQ(mem.texInjectQueue(0).size(), 1u);
}

TEST_F(LsuTest, ResetDropsPendingWork)
{
    lsu.beginCycle();
    lsu.accept(0, loadInst(0x1000));
    lsu.reset();
    EXPECT_TRUE(lsu.empty());
    lsu.beginCycle();
    EXPECT_TRUE(lsu.canAccept());
}

TEST_F(LsuTest, MissesGoDownstreamNotToWakeups)
{
    lsu.beginCycle();
    lsu.accept(1, loadInst(0x8000));
    lsu.tick(1);
    EXPECT_EQ(mem.smInjectQueue(0).size(), 1u);
    EXPECT_TRUE(lsu.drainHitWakeups(1000).empty());
}

} // namespace
} // namespace equalizer
