/**
 * @file
 * Coverage for the smaller public pieces: GWDE, the passive warp-state
 * monitor, RunMetrics edge cases and VF request naming.
 */

#include <gtest/gtest.h>

#include "equalizer/monitor.hh"
#include "gpu/gwde.hh"
#include "gpu/metrics.hh"
#include "sim/vf.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;

// ------------------------------------------------------------------ GWDE

TEST(Gwde, DispensesBlocksInLaunchOrder)
{
    GlobalWorkDistributor gwde;
    KernelInfo info;
    info.totalBlocks = 3;
    info.warpsPerBlock = 4;
    ScriptedKernel k(info, {aluInst()});
    gwde.launch(k);
    EXPECT_EQ(gwde.total(), 3);
    EXPECT_EQ(gwde.remaining(), 3);
    EXPECT_EQ(gwde.takeBlock(), 0);
    EXPECT_EQ(gwde.takeBlock(), 1);
    EXPECT_EQ(gwde.remaining(), 1);
    EXPECT_TRUE(gwde.hasBlocks());
    EXPECT_EQ(gwde.takeBlock(), 2);
    EXPECT_FALSE(gwde.hasBlocks());
}

TEST(Gwde, RelaunchResets)
{
    GlobalWorkDistributor gwde;
    KernelInfo a;
    a.totalBlocks = 2;
    ScriptedKernel ka(a, {aluInst()});
    gwde.launch(ka);
    gwde.takeBlock();
    gwde.takeBlock();
    EXPECT_FALSE(gwde.hasBlocks());

    KernelInfo b;
    b.totalBlocks = 5;
    ScriptedKernel kb(b, {aluInst()});
    gwde.launch(kb);
    EXPECT_EQ(gwde.remaining(), 5);
    EXPECT_EQ(gwde.takeBlock(), 0);
}

// --------------------------------------------------------------- Monitor

TEST(Monitor, SamplesAtConfiguredInterval)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 2;
    GpuTop gpu(cfg);
    WarpStateMonitor monitor(64);
    gpu.setCycleObserver(
        [&monitor](GpuTop &g) { monitor.observe(g); });

    KernelInfo info;
    info.name = "mon";
    info.totalBlocks = 4;
    info.warpsPerBlock = 4;
    info.maxBlocksPerSm = 2;
    std::vector<WarpInstruction> script(600, aluInst());
    ScriptedKernel k(info, script);
    const RunMetrics m = gpu.runKernel(k);

    ASSERT_FALSE(monitor.samples().empty());
    EXPECT_NEAR(static_cast<double>(monitor.samples().size()),
                static_cast<double>(m.smCycles) / 64.0, 2.0);
    // Sample cycles are multiples of the interval and increasing.
    Cycle prev = 0;
    for (const auto &s : monitor.samples()) {
        EXPECT_EQ(s.cycle % 64, 0u);
        EXPECT_GT(s.cycle, prev);
        prev = s.cycle;
    }
}

TEST(Monitor, ObservesActiveWarps)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 1;
    GpuTop gpu(cfg);
    WarpStateMonitor monitor(16);
    gpu.setCycleObserver(
        [&monitor](GpuTop &g) { monitor.observe(g); });

    KernelInfo info;
    info.name = "mon2";
    info.totalBlocks = 2;
    info.warpsPerBlock = 8;
    info.maxBlocksPerSm = 2;
    std::vector<WarpInstruction> script(500, aluInst());
    ScriptedKernel k(info, script);
    gpu.runKernel(k);

    // Mid-run samples see 16 active warps granted by max concurrency.
    bool saw_full = false;
    for (const auto &s : monitor.samples())
        saw_full = saw_full ||
                   (s.active > 15.5 && s.unpausedWarps > 15.5);
    EXPECT_TRUE(saw_full);
    monitor.clear();
    EXPECT_TRUE(monitor.samples().empty());
}

// ------------------------------------------------------------ RunMetrics

TEST(RunMetrics, ZeroSafeAccessors)
{
    const RunMetrics m;
    EXPECT_DOUBLE_EQ(m.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(m.l1HitRate(), 0.0);
    EXPECT_DOUBLE_EQ(m.totalJoules(), 0.0);
}

TEST(RunMetrics, DerivedRatesComputed)
{
    RunMetrics m;
    m.smCycles = 100;
    m.instructions = 250;
    m.l1Hits = 30;
    m.l1Misses = 10;
    m.dynamicJoules = 1.5;
    m.staticJoules = 0.5;
    EXPECT_DOUBLE_EQ(m.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(m.l1HitRate(), 0.75);
    EXPECT_DOUBLE_EQ(m.totalJoules(), 2.0);
}

// -------------------------------------------------------------------- VF

TEST(VfRequest, NamesAreDistinct)
{
    EXPECT_STRNE(vfRequestName(VfRequest::Increase),
                 vfRequestName(VfRequest::Decrease));
    EXPECT_STRNE(vfRequestName(VfRequest::Increase),
                 vfRequestName(VfRequest::Maintain));
}

} // namespace
} // namespace equalizer
