/**
 * @file
 * Tests for the synthetic kernel generator and the Table II roster.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "mem/mem_access.hh"

namespace equalizer
{
namespace
{

KernelParams
simpleParams()
{
    KernelParams p;
    p.name = "unit";
    p.warpsPerBlock = 4;
    p.maxBlocksPerSm = 4;
    p.totalBlocks = 8;
    p.instrsPerWarp = 200;
    PhaseParams ph;
    ph.aluPerMem = 4.0;
    ph.reuseFraction = 0.5;
    ph.workingSetBytes = 1024;
    ph.transactionsPerLoad = 2;
    p.phases = {ph};
    return p;
}

std::vector<WarpInstruction>
drain(InstructionStream &s)
{
    std::vector<WarpInstruction> out;
    WarpInstruction inst;
    while (s.next(inst))
        out.push_back(inst);
    return out;
}

TEST(SyntheticKernel, StreamsAreDeterministic)
{
    const SyntheticKernel k(simpleParams());
    auto a = drain(*k.makeWarpStream(3, 1));
    auto b = drain(*k.makeWarpStream(3, 1));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].transactionCount, b[i].transactionCount);
        EXPECT_EQ(a[i].lineAddrs[0], b[i].lineAddrs[0]);
        EXPECT_EQ(a[i].dependsOnPrev, b[i].dependsOnPrev);
    }
}

TEST(SyntheticKernel, DifferentWarpsDiffer)
{
    const SyntheticKernel k(simpleParams());
    auto a = drain(*k.makeWarpStream(0, 0));
    auto b = drain(*k.makeWarpStream(0, 1));
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].op != b[i].op ||
                  a[i].lineAddrs[0] != b[i].lineAddrs[0];
    EXPECT_TRUE(differs);
}

TEST(SyntheticKernel, StreamLengthMatchesParams)
{
    const SyntheticKernel k(simpleParams());
    EXPECT_EQ(drain(*k.makeWarpStream(0, 0)).size(), 200u);
}

TEST(SyntheticKernel, AllAddressesAreLineAligned)
{
    const SyntheticKernel k(simpleParams());
    for (const auto &inst : drain(*k.makeWarpStream(1, 2))) {
        if (inst.op != OpClass::Mem)
            continue;
        for (int t = 0; t < inst.transactionCount; ++t)
            EXPECT_EQ(inst.lineAddrs[static_cast<std::size_t>(t)] %
                          lineBytes,
                      0u);
    }
}

TEST(SyntheticKernel, MixRoughlyMatchesAluPerMem)
{
    auto p = simpleParams();
    p.instrsPerWarp = 5000;
    const SyntheticKernel k(p);
    int alu = 0;
    int mem = 0;
    for (const auto &inst : drain(*k.makeWarpStream(0, 0))) {
        if (inst.op == OpClass::Mem)
            ++mem;
        else
            ++alu;
    }
    EXPECT_NEAR(static_cast<double>(alu) / mem, 4.0, 0.5);
}

TEST(SyntheticKernel, LoadsCreateDownstreamDependency)
{
    auto p = simpleParams();
    p.phases[0].storeFraction = 0.0;
    const SyntheticKernel k(p);
    const auto insts = drain(*k.makeWarpStream(0, 0));
    // Every load must be followed by a dependsOnLoads consumer before
    // the next memory instruction ends the iteration... within a few
    // instructions (loadDepDistance bounded by the iteration length).
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op != OpClass::Mem)
            continue;
        bool found_use = false;
        for (std::size_t j = i + 1; j < insts.size() && !found_use; ++j) {
            if (insts[j].op == OpClass::Mem)
                break;
            found_use = insts[j].dependsOnLoads;
        }
        if (i + 1 < insts.size() && insts[i + 1].op != OpClass::Mem) {
            EXPECT_TRUE(found_use) << "load at " << i << " never consumed";
        }
    }
}

TEST(SyntheticKernel, WorkingSetAddressesStayInWorkingSet)
{
    auto p = simpleParams();
    p.phases[0].reuseFraction = 1.0;
    p.phases[0].storeFraction = 0.0;
    p.instrsPerWarp = 2000;
    const SyntheticKernel k(p);
    std::set<Addr> distinct;
    for (const auto &inst : drain(*k.makeWarpStream(0, 0)))
        if (inst.op == OpClass::Mem)
            for (int t = 0; t < inst.transactionCount; ++t)
                distinct.insert(inst.lineAddrs[static_cast<std::size_t>(t)]);
    // 1 kB working set = 8 lines.
    EXPECT_EQ(distinct.size(), 8u);
}

TEST(SyntheticKernel, StreamingAddressesNeverRepeat)
{
    auto p = simpleParams();
    p.phases[0].reuseFraction = 0.0;
    p.phases[0].storeFraction = 0.0;
    const SyntheticKernel k(p);
    std::set<Addr> seen;
    for (const auto &inst : drain(*k.makeWarpStream(0, 0))) {
        if (inst.op != OpClass::Mem)
            continue;
        for (int t = 0; t < inst.transactionCount; ++t) {
            EXPECT_TRUE(
                seen.insert(inst.lineAddrs[static_cast<std::size_t>(t)])
                    .second);
        }
    }
}

TEST(SyntheticKernel, InvocationModifiersApply)
{
    auto p = simpleParams();
    InvocationMod longer;
    longer.lengthScale = 2.0;
    InvocationMod shorter;
    shorter.lengthScale = 0.5;
    shorter.blocksScale = 0.5;
    p.invocations = {longer, shorter};

    const SyntheticKernel inv0(p, 0);
    const SyntheticKernel inv1(p, 1);
    EXPECT_EQ(drain(*inv0.makeWarpStream(0, 0)).size(), 400u);
    EXPECT_EQ(drain(*inv1.makeWarpStream(0, 0)).size(), 100u);
    EXPECT_EQ(inv0.info().totalBlocks, 8);
    EXPECT_EQ(inv1.info().totalBlocks, 4);
}

TEST(SyntheticKernel, ReuseOverrideReplacesPhaseValue)
{
    auto p = simpleParams();
    p.phases[0].reuseFraction = 0.0;
    p.phases[0].storeFraction = 0.0;
    p.instrsPerWarp = 3000;
    InvocationMod reuse_all;
    reuse_all.reuseOverride = 1.0;
    p.invocations = {reuse_all};
    const SyntheticKernel k(p, 0);
    std::set<Addr> distinct;
    for (const auto &inst : drain(*k.makeWarpStream(0, 0)))
        if (inst.op == OpClass::Mem)
            for (int t = 0; t < inst.transactionCount; ++t)
                distinct.insert(inst.lineAddrs[static_cast<std::size_t>(t)]);
    EXPECT_LE(distinct.size(), 8u);
}

TEST(SyntheticKernel, LoadImbalanceLengthensEarlyBlocks)
{
    auto p = simpleParams();
    p.longBlocks = 1;
    p.longBlockFactor = 10.0;
    const SyntheticKernel k(p);
    EXPECT_EQ(drain(*k.makeWarpStream(0, 0)).size(), 2000u);
    EXPECT_EQ(drain(*k.makeWarpStream(1, 0)).size(), 200u);
}

TEST(SyntheticKernel, SyncInstructionsEmittedAtInterval)
{
    auto p = simpleParams();
    p.phases[0].syncEvery = 20;
    p.instrsPerWarp = 400;
    const SyntheticKernel k(p);
    int syncs = 0;
    for (const auto &inst : drain(*k.makeWarpStream(0, 0)))
        syncs += inst.op == OpClass::Sync ? 1 : 0;
    EXPECT_NEAR(syncs, 400 / 21, 3);
}

TEST(SyntheticKernel, PhasesChangeTheMix)
{
    KernelParams p = simpleParams();
    PhaseParams compute;
    compute.weight = 0.5;
    compute.aluPerMem = 20.0;
    PhaseParams memory;
    memory.weight = 0.5;
    memory.aluPerMem = 1.0;
    p.phases = {compute, memory};
    p.instrsPerWarp = 4000;
    const SyntheticKernel k(p);
    const auto insts = drain(*k.makeWarpStream(0, 0));
    auto mem_fraction = [&insts](std::size_t from, std::size_t to) {
        int mem = 0;
        for (std::size_t i = from; i < to; ++i)
            mem += insts[i].op == OpClass::Mem ? 1 : 0;
        return static_cast<double>(mem) / static_cast<double>(to - from);
    };
    EXPECT_LT(mem_fraction(0, 2000), 0.1);
    EXPECT_GT(mem_fraction(2000, 4000), 0.3);
}

// ------------------------------------------------------------------- Zoo

TEST(KernelZoo, HasAll27Kernels)
{
    EXPECT_EQ(KernelZoo::all().size(), 27u);
}

TEST(KernelZoo, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &n : KernelZoo::names())
        EXPECT_TRUE(names.insert(n).second) << "duplicate " << n;
}

TEST(KernelZoo, CategoryRosterMatchesPaperFigures)
{
    EXPECT_EQ(KernelZoo::namesInCategory(KernelCategory::Compute).size(),
              9u);
    EXPECT_EQ(KernelZoo::namesInCategory(KernelCategory::Memory).size(),
              5u);
    EXPECT_EQ(KernelZoo::namesInCategory(KernelCategory::Cache).size(), 7u);
    EXPECT_EQ(
        KernelZoo::namesInCategory(KernelCategory::Unsaturated).size(),
        6u);
}

TEST(KernelZoo, TableTwoSpotChecks)
{
    // W_cta and max blocks straight from the paper's Table II.
    const auto &bfs = KernelZoo::byName("bfs-2").params;
    EXPECT_EQ(bfs.warpsPerBlock, 16);
    EXPECT_EQ(bfs.maxBlocksPerSm, 3);
    EXPECT_EQ(bfs.invocationCount(), 12);

    const auto &cutcp = KernelZoo::byName("cutcp").params;
    EXPECT_EQ(cutcp.warpsPerBlock, 6);
    EXPECT_EQ(cutcp.maxBlocksPerSm, 8);

    const auto &lbm = KernelZoo::byName("lbm").params;
    EXPECT_EQ(lbm.warpsPerBlock, 4);
    EXPECT_EQ(lbm.maxBlocksPerSm, 7);

    const auto &kmn = KernelZoo::byName("kmn").params;
    EXPECT_EQ(kmn.warpsPerBlock, 8);
    EXPECT_EQ(kmn.maxBlocksPerSm, 6);
}

TEST(KernelZoo, SpmvIsCacheSensitivePerFigures)
{
    EXPECT_EQ(KernelZoo::byName("spmv").params.category,
              KernelCategory::Cache);
}

TEST(KernelZoo, Leuko1UsesTexturePath)
{
    const auto &p = KernelZoo::byName("leuko-1").params;
    EXPECT_TRUE(p.phases[0].texture);
}

TEST(KernelZoo, Prtcl2HasLoadImbalance)
{
    const auto &p = KernelZoo::byName("prtcl-2").params;
    EXPECT_GT(p.longBlocks, 0);
    EXPECT_GT(p.longBlockFactor, 1.0);
}

TEST(KernelZoo, FractionsAreSane)
{
    for (const auto &e : KernelZoo::all()) {
        EXPECT_GT(e.appFraction, 0.0);
        EXPECT_LE(e.appFraction, 1.0);
    }
}

TEST(KernelZooDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(KernelZoo::byName("nope"), ::testing::ExitedWithCode(1),
                "unknown kernel");
}

/** Every zoo kernel produces valid, finite warp streams. */
class ZooStreams : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooStreams, StreamsAreValidAndFinite)
{
    const auto &entry = KernelZoo::byName(GetParam());
    const SyntheticKernel k(entry.params, 0);
    auto stream = k.makeWarpStream(0, 0);
    WarpInstruction inst;
    std::int64_t count = 0;
    while (stream->next(inst)) {
        ++count;
        ASSERT_LT(count, 1'000'000);
        if (inst.op == OpClass::Mem) {
            ASSERT_GE(inst.transactionCount, 1);
            ASSERT_LE(inst.transactionCount, maxTransactionsPerInst);
        }
    }
    EXPECT_GT(count, 0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ZooStreams,
                         ::testing::ValuesIn(KernelZoo::names()));

} // namespace
} // namespace equalizer
