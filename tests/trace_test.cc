/**
 * @file
 * Tests for the epoch-level tracing subsystem: ring overflow
 * semantics, reader round-trips, thread-count determinism, Chrome
 * trace_event export, and checkpoint/fork trace interoperability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

#include "gpu/gpu_top.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "sim/parallel_executor.hh"
#include "trace/chrome_trace.hh"
#include "trace/ring_buffer.hh"
#include "trace/sink.hh"
#include "trace/trace_reader.hh"
#include "trace/tracer.hh"

namespace equalizer
{
namespace
{

bool
sameEvent(const TraceEvent &a, const TraceEvent &b)
{
    return std::memcmp(&a, &b, sizeof(TraceEvent)) == 0;
}

bool
sameEvents(const std::vector<TraceEvent> &a,
           const std::vector<TraceEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!sameEvent(a[i], b[i]))
            return false;
    return true;
}

/** A tracing config that drains often within short test runs. */
TraceConfig
fastTrace()
{
    TraceConfig cfg;
    cfg.epochCycles = 512;
    return cfg;
}

/** Equalizer tuned so decisions churn within short runs. */
PolicySpec
churnyEqualizer()
{
    EqualizerConfig ecfg;
    ecfg.epochCycles = 512;
    ecfg.sampleInterval = 64;
    return policies::equalizer(EqualizerMode::Performance, ecfg);
}

/** Run @p kernel under Equalizer with tracing; return the trace. */
std::vector<std::uint8_t>
tracedRunBytes(const std::string &kernel, int threads)
{
    MemoryTraceSink sink;
    Tracer tracer(fastTrace(), sink);
    ExperimentRunner runner(GpuConfig::gtx480(), PowerConfig::gtx480(),
                            threads);
    runner.setTracer(&tracer);
    runner.runByName(kernel, churnyEqualizer());
    tracer.finish();
    return sink.serialize();
}

// --- Ring buffer -------------------------------------------------------

TEST(TraceRing, OverflowDropsNewestAndCounts)
{
    TraceRing ring(4);
    for (int i = 0; i < 7; ++i)
        ring.push(makeSmEvent(TraceEventKind::BlockComplete, 100 + i, 0,
                              i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.drops(), 3u);

    // FIFO drain yields the four oldest events; the drop counter is
    // read-and-reset.
    std::vector<TraceEvent> out;
    ring.drainInto(out);
    ASSERT_EQ(out.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)].p.i[0], i);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.takeDrops(), 3u);
    EXPECT_EQ(ring.drops(), 0u);
}

TEST(TraceRing, TracerTurnsOverflowIntoDropsEvents)
{
    MemoryTraceSink sink;
    TraceConfig cfg;
    cfg.bufKb = 1; // 1 KiB / 48 B = 21 events per ring
    Tracer tracer(cfg, sink);
    tracer.attach(2);

    const std::size_t cap = tracer.ring(0)->capacity();
    for (std::size_t i = 0; i < cap + 5; ++i) {
        tracer.ring(0)->push(makeSmEvent(TraceEventKind::BlockComplete,
                                         static_cast<Cycle>(i), 0));
    }
    tracer.drainRings(cap + 5);
    tracer.finish();

    EXPECT_EQ(tracer.eventsDropped(), 5u);
    const TraceReader trace = TraceReader::fromBytes(sink.serialize());
    // The drain appends one Drops record carrying the counted loss.
    const auto sm0 = trace.smEvents(0);
    ASSERT_FALSE(sm0.empty());
    EXPECT_EQ(sm0.back().kind, TraceEventKind::Drops);
    EXPECT_EQ(sm0.back().p.i[0], 5);
    EXPECT_TRUE(trace.smEvents(1).empty());
}

// --- Reader round-trip -------------------------------------------------

TEST(TraceReader, RoundTripsARealRun)
{
    const auto bytes = tracedRunBytes("sgemm", 1);
    const TraceReader trace = TraceReader::fromBytes(bytes);

    EXPECT_EQ(trace.segments(), 1);
    EXPECT_EQ(trace.header().numSms,
              static_cast<std::uint32_t>(GpuConfig::gtx480().numSms));
    ASSERT_FALSE(trace.events().empty());

    // The run is bracketed by kernel begin/end on the device track.
    const auto device = trace.deviceEvents();
    ASSERT_GE(device.size(), 2u);
    EXPECT_EQ(device.front().kind, TraceEventKind::KernelBegin);
    EXPECT_EQ(traceEventString(device.front()), "sgemm");
    bool saw_end = false;
    for (const auto &e : device)
        saw_end = saw_end || e.kind == TraceEventKind::KernelEnd;
    EXPECT_TRUE(saw_end);

    // Equalizer emits per-SM epoch samples, and the standard gauges
    // are defined.
    bool saw_sample = false;
    for (const auto &e : trace.smEvents(0))
        saw_sample = saw_sample || e.kind == TraceEventKind::EpochSample;
    EXPECT_TRUE(saw_sample);
    const auto gauges = trace.gaugeNames();
    EXPECT_NE(std::find(gauges.begin(), gauges.end(), "instructions"),
              gauges.end());
}

TEST(TraceReader, TruncatedFileIsFatal)
{
    auto bytes = tracedRunBytes("sgemm", 1);
    bytes.resize(bytes.size() - 7); // mid-record
    EXPECT_EXIT(TraceReader::fromBytes(bytes),
                ::testing::ExitedWithCode(1), "trace");
}

// --- Determinism across thread counts ----------------------------------

TEST(TraceDeterminism, ThreadCountsProduceByteIdenticalTraces)
{
    const auto serial = tracedRunBytes("sgemm", 1);
    const auto parallel = tracedRunBytes("sgemm", 4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// --- Chrome trace_event export -----------------------------------------

TEST(ChromeTrace, ExportLooksLikeTraceEventJson)
{
    const TraceReader trace =
        TraceReader::fromBytes(tracedRunBytes("sgemm", 2));
    std::ostringstream os;
    writeChromeTrace(trace, os);
    const std::string out = os.str();

    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    // Process metadata for the SM, device, clock and gauge tracks.
    EXPECT_NE(out.find("\"name\":\"device\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"SM 0\""), std::string::npos);
    // Kernel span + warp-state counters from the Equalizer samples.
    EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"warp_states\""), std::string::npos);

    // Structural sanity without a JSON parser: braces and brackets
    // balance, and the object terminates cleanly.
    long braces = 0, brackets = 0;
    for (char c : out) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_TRUE(chromeTracePath("out.json"));
    EXPECT_FALSE(chromeTracePath("out.bin"));
}

// --- Checkpoint / fork interoperability --------------------------------

/**
 * The trace/checkpoint interop contract (docs/TRACING.md): a run
 * restored from a mid-kernel checkpoint traces exactly the
 * uninterrupted run's suffix — same events, same order — modulo the
 * lifecycle markers and the one-time GaugeDef records.
 */
TEST(TraceCheckpoint, ResumedSuffixMatchesUninterruptedRun)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    const GpuConfig gcfg = GpuConfig::gtx480();
    const PowerConfig pcfg = PowerConfig::gtx480();
    const PolicySpec policy = churnyEqualizer();
    const Cycle save_cycle = 1800; // mid-epoch

    // Uninterrupted traced run F.
    MemoryTraceSink full_sink;
    Tracer full_tracer(fastTrace(), full_sink);
    {
        GpuTop gpu(gcfg, pcfg);
        gpu.setTracer(&full_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        for (int inv = 0; inv < params.invocationCount(); ++inv) {
            SyntheticKernel launch(params, inv);
            gpu.runKernel(launch);
        }
    }
    full_tracer.finish();

    // Donor saving mid-kernel at save_cycle. The donor must trace on
    // the same epoch grid (sink contents don't matter): epoch drains
    // reset the high-water counters, so only an equally-traced prefix
    // checkpoints the same counter windows the full run sees.
    std::vector<std::uint8_t> saved;
    NullTraceSink null_sink;
    Tracer donor_tracer(fastTrace(), null_sink);
    {
        GpuTop donor(gcfg, pcfg);
        donor.setTracer(&donor_tracer);
        const auto ctrl = policy.build();
        donor.setController(ctrl.get());
        donor.setCycleObserver([&saved, save_cycle](GpuTop &g) {
            if (saved.empty() && g.smDomain().cycle() == save_cycle)
                saved = g.saveStateBuffer();
        });
        SyntheticKernel launch(params, 0);
        donor.runKernel(launch);
    }
    ASSERT_FALSE(saved.empty());

    // Traced restored run B: resume invocation 0, finish the schedule.
    MemoryTraceSink resumed_sink;
    Tracer resumed_tracer(fastTrace(), resumed_sink);
    {
        GpuTop gpu(gcfg, pcfg);
        gpu.setTracer(&resumed_tracer);
        const auto ctrl = policy.build();
        gpu.setController(ctrl.get());
        gpu.loadStateBuffer(saved);
        ASSERT_TRUE(gpu.midKernel());
        {
            SyntheticKernel launch(params, 0);
            gpu.resumeKernel(launch);
        }
        for (int inv = 1; inv < params.invocationCount(); ++inv) {
            SyntheticKernel launch(params, inv);
            gpu.runKernel(launch);
        }
    }
    resumed_tracer.finish();

    const TraceReader full =
        TraceReader::fromBytes(full_sink.serialize());
    const TraceReader resumed =
        TraceReader::fromBytes(resumed_sink.serialize());

    // B opens with the Restore marker at the checkpoint cycle.
    const auto resumed_device = resumed.deviceEvents();
    ASSERT_FALSE(resumed_device.empty());
    EXPECT_EQ(resumed_device.front().kind, TraceEventKind::Restore);
    EXPECT_EQ(resumed_device.front().cycle, save_cycle);

    // Stream equality: F's events after the checkpoint == B's events,
    // once markers and the definitional GaugeDef records are removed.
    auto comparable = [save_cycle](const TraceReader &r) {
        std::vector<TraceEvent> out;
        for (const auto &e : r.eventsWithoutMarkers()) {
            if (e.kind == TraceEventKind::GaugeDef)
                continue;
            if (e.cycle > save_cycle)
                out.push_back(e);
        }
        return out;
    };
    const auto full_suffix = comparable(full);
    const auto resumed_all = comparable(resumed);
    ASSERT_FALSE(full_suffix.empty());
    EXPECT_TRUE(sameEvents(full_suffix, resumed_all))
        << "suffix streams diverged: " << full_suffix.size() << " vs "
        << resumed_all.size() << " events";

    // Both runs define the same gauges.
    EXPECT_EQ(full.gaugeNames(), resumed.gaugeNames());

    // `cat prefix suffix` concatenation parses as one multi-segment
    // trace whose stream is the two runs' streams back to back.
    auto cat = full_sink.serialize();
    const auto suffix_bytes = resumed_sink.serialize();
    cat.insert(cat.end(), suffix_bytes.begin(), suffix_bytes.end());
    const TraceReader joined = TraceReader::fromBytes(cat);
    EXPECT_EQ(joined.segments(), 2);
    EXPECT_EQ(joined.events().size(),
              full.events().size() + resumed.events().size());
}

/** forkFrom() stamps the child's trace with a Fork marker. */
TEST(TraceCheckpoint, ForkedChildTraceOpensWithForkMarker)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    const GpuConfig gcfg = GpuConfig::gtx480();
    const PowerConfig pcfg = PowerConfig::gtx480();

    GpuTop parent(gcfg, pcfg);
    {
        SyntheticKernel launch(params, 0);
        parent.runKernel(launch);
    }

    MemoryTraceSink sink;
    Tracer tracer(fastTrace(), sink);
    GpuTop child(gcfg, pcfg);
    child.setTracer(&tracer);
    child.forkFrom(parent);
    {
        SyntheticKernel launch(params, 1);
        child.runKernel(launch);
    }
    tracer.finish();

    const TraceReader trace = TraceReader::fromBytes(sink.serialize());
    // forkFrom() is restore + fork: the child timeline opens with the
    // Restore of the parent's state followed by the Fork stamp.
    const auto device = trace.deviceEvents();
    ASSERT_GE(device.size(), 2u);
    EXPECT_EQ(device[0].kind, TraceEventKind::Restore);
    EXPECT_EQ(device[1].kind, TraceEventKind::Fork);
    // The marker-stripped view hides the lifecycle records.
    for (const auto &e : trace.eventsWithoutMarkers())
        EXPECT_FALSE(isTraceMarker(e.kind));
}

} // namespace
} // namespace equalizer
