/**
 * @file
 * Checkpoint/restore tests: component round-trips through the
 * StateVisitor buffers, whole-GPU mid-kernel save + resume equivalence
 * (serial and multi-threaded), fork semantics, and the strict-argument
 * satellite features (unknown-key rejection, EQ_THREADS validation).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/gpu_top.hh"
#include "harness/export.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "kernels/kernel_zoo.hh"
#include "kernels/synthetic_kernel.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "mem/queues.hh"
#include "sim/parallel_executor.hh"
#include "sim/state.hh"

namespace equalizer
{
namespace
{

constexpr std::uint64_t testFingerprint = 0x5eed;

/** Save one component's state into a standalone buffer. */
template <typename T>
std::vector<std::uint8_t>
saveOf(T &component)
{
    BufferStateWriter w(testFingerprint);
    component.visitState(w);
    return w.take();
}

/** Restore one component's state from a standalone buffer. */
template <typename T>
void
loadInto(T &component, const std::vector<std::uint8_t> &buf)
{
    BufferStateReader r(buf, testFingerprint);
    component.visitState(r);
    r.finish();
}

// --- Component round-trips --------------------------------------------

TEST(StateRoundTrip, MshrKeepsInFlightMergesAndWaiterOrder)
{
    MshrFile a(8, 4);
    ASSERT_EQ(a.allocate(0x300, 2), MshrFile::Outcome::NewMiss);
    ASSERT_EQ(a.allocate(0x100, 3), MshrFile::Outcome::NewMiss);
    ASSERT_EQ(a.allocate(0x100, 5), MshrFile::Outcome::Merged);
    ASSERT_EQ(a.allocate(0x300, 4), MshrFile::Outcome::Merged);
    ASSERT_EQ(a.allocate(0x300, 6), MshrFile::Outcome::Merged);
    ASSERT_EQ(a.allocate(0x240, 1), MshrFile::Outcome::NewMiss);

    MshrFile b(8, 4);
    loadInto(b, saveOf(a));

    EXPECT_EQ(b.outstanding(), 3);
    EXPECT_TRUE(b.tracking(0x100));
    EXPECT_TRUE(b.tracking(0x240));
    // Merge order is architectural: fills wake waiters in merge order.
    EXPECT_EQ(b.fill(0x300), (std::vector<WarpId>{2, 4, 6}));
    EXPECT_EQ(b.fill(0x100), (std::vector<WarpId>{3, 5}));
    EXPECT_EQ(b.outstanding(), 1);
}

TEST(StateRoundTrip, MshrBytesAreCanonicalAcrossInsertionOrder)
{
    // Same logical contents built in different orders must serialize
    // to identical bytes (sorted-address canonical form).
    MshrFile a(8, 4), b(8, 4);
    for (Addr addr : {0x500, 0x100, 0x300})
        a.allocate(addr, static_cast<WarpId>(addr >> 8));
    for (Addr addr : {0x100, 0x300, 0x500})
        b.allocate(addr, static_cast<WarpId>(addr >> 8));
    EXPECT_EQ(saveOf(a), saveOf(b));
}

TEST(StateRoundTrip, MshrCapacityMismatchIsFatal)
{
    MshrFile a(8, 4);
    const auto buf = saveOf(a);
    EXPECT_EXIT(
        {
            MshrFile b(16, 4);
            loadInto(b, buf);
        },
        ::testing::ExitedWithCode(1), "MSHR entry count");
}

TEST(StateRoundTrip, PartiallyDrainedBoundedQueue)
{
    BoundedQueue<int> a(4);
    for (int i = 1; i <= 4; ++i)
        ASSERT_TRUE(a.push(i));
    ASSERT_EQ(a.pop(), 1);
    ASSERT_EQ(a.pop(), 2);

    BoundedQueue<int> b(4);
    loadInto(b, saveOf(a));

    EXPECT_EQ(b.size(), 2u);
    EXPECT_FALSE(b.full());
    EXPECT_TRUE(b.push(5));
    EXPECT_TRUE(b.push(6));
    EXPECT_FALSE(b.push(7)); // capacity survives the round-trip
    EXPECT_EQ(b.pop(), 3);
    EXPECT_EQ(b.pop(), 4);
    EXPECT_EQ(b.pop(), 5);
    EXPECT_EQ(b.pop(), 6);
}

TEST(StateRoundTrip, PartiallyDrainedDelayQueue)
{
    DelayQueue<int> a(8);
    ASSERT_TRUE(a.push(10, 5));
    ASSERT_TRUE(a.push(20, 9));
    ASSERT_TRUE(a.push(30, 9));
    ASSERT_EQ(a.popReady(6), 10);

    DelayQueue<int> b(8);
    loadInto(b, saveOf(a));

    EXPECT_EQ(b.size(), 2u);
    EXPECT_FALSE(b.headReady(8)); // in-flight latency is preserved
    EXPECT_EQ(b.popReady(9), 20);
    EXPECT_EQ(b.popReady(9), 30);
    EXPECT_TRUE(b.empty());
}

TEST(StateRoundTrip, DramBankTimingContinuesExactly)
{
    const MemConfig cfg = MemConfig::gtx480();
    EnergyModel e1, e2;
    DramPartition live(cfg, 0, e1);

    // Mix row hits and conflicts, then advance into the middle of a
    // burst so busyUntil_/openRow_/queue_ are all non-trivial.
    Cycle now = 0;
    for (int i = 0; i < 6; ++i) {
        const Addr addr =
            static_cast<Addr>(i % 2) * 0x40000 +
            static_cast<Addr>(i) * lineBytes;
        ASSERT_TRUE(
            live.submit(MemAccess{addr, 0, i, false, false}, now));
    }
    std::vector<std::optional<MemAccess>> prefix;
    for (; now < 30; ++now)
        prefix.push_back(live.tick(now));

    DramPartition restored(cfg, 0, e2);
    loadInto(restored, saveOf(live));

    // From here on both instances must emit the identical completion
    // sequence, cycle for cycle.
    for (; now < 600; ++now) {
        const auto a = live.tick(now);
        const auto b = restored.tick(now);
        ASSERT_EQ(a.has_value(), b.has_value()) << "cycle " << now;
        if (a) {
            EXPECT_EQ(a->lineAddr, b->lineAddr);
            EXPECT_EQ(a->warp, b->warp);
        }
    }
    EXPECT_EQ(live.accesses(), restored.accesses());
    EXPECT_EQ(live.rowHits(), restored.rowHits());
    EXPECT_EQ(live.meanQueueDelay(), restored.meanQueueDelay());
    EXPECT_EQ(live.poweredDownCycles(), restored.poweredDownCycles());
}

TEST(StateRoundTrip, TamperedPayloadIsFatal)
{
    MshrFile a(8, 4);
    a.allocate(0x100, 1);
    auto buf = saveOf(a);
    buf[buf.size() / 2] ^= 0x40; // corrupt one payload byte
    EXPECT_EXIT(
        {
            MshrFile b(8, 4);
            loadInto(b, buf);
        },
        ::testing::ExitedWithCode(1), "checkpoint");
}

// --- Stats reset semantics (fork path) --------------------------------

TEST(Stats, CounterAndDistributionSnapshotAndReset)
{
    Counter c;
    c += 7;
    const Counter snap = c.snapshotAndReset();
    EXPECT_EQ(snap.value(), 7u);
    EXPECT_EQ(c.value(), 0u);

    Distribution d;
    d.sample(-3.0);
    d.sample(5.0);
    const Distribution dsnap = d.snapshotAndReset();
    EXPECT_EQ(dsnap.count(), 2u);
    EXPECT_DOUBLE_EQ(dsnap.min(), -3.0);
    EXPECT_DOUBLE_EQ(dsnap.max(), 5.0);
    EXPECT_EQ(d.count(), 0u);
    // A fully re-armed min/max: nothing pre-reset leaks through.
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(Stats, RegistrySnapshotAndResetKeepsNames)
{
    StatRegistry reg;
    reg.counter("a.hits") += 3;
    reg.distribution("a.depth").sample(2.0);
    const StatRegistry snap = reg.snapshotAndReset();
    EXPECT_EQ(snap.counterValue("a.hits"), 3u);
    EXPECT_EQ(reg.counterValue("a.hits"), 0u);
    // Names survive: the next interval reuses the same statistics.
    EXPECT_EQ(reg.counters().count("a.hits"), 1u);
}

// --- Strict argument parsing (satellite) ------------------------------

TEST(ConfigDeath, UnknownKeySuggestsCloseMatches)
{
    EXPECT_EXIT(Config::fromArgs(
                    {"kernal=lbm"},
                    std::vector<std::string>{"kernel", "policy"}),
                ::testing::ExitedWithCode(1),
                "unknown option 'kernal'.*did you mean 'kernel'");
}

TEST(ConfigDeath, UnknownKeyListsRosterWhenNothingIsClose)
{
    EXPECT_EXIT(Config::fromArgs(
                    {"zzz=1"},
                    std::vector<std::string>{"kernel", "policy"}),
                ::testing::ExitedWithCode(1),
                "known options: kernel policy");
}

TEST(Config, KnownKeysPassStrictParsing)
{
    const Config cfg = Config::fromArgs(
        {"kernel=lbm", "sms=8"},
        std::vector<std::string>{"kernel", "sms"});
    EXPECT_EQ(cfg.getString("kernel", ""), "lbm");
    EXPECT_EQ(cfg.getInt("sms", 0), 8);
}

TEST(BenchUtilDeath, NonNumericEqThreadsIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("EQ_THREADS", "lots", 1);
            bench::simThreadsFromEnv();
        },
        ::testing::ExitedWithCode(1), "EQ_THREADS");
}

TEST(BenchUtil, NumericEqThreadsParses)
{
    setenv("EQ_THREADS", "3", 1);
    EXPECT_EQ(bench::simThreadsFromEnv(), 3);
    unsetenv("EQ_THREADS");
    EXPECT_EQ(bench::simThreadsFromEnv(), 0);
}

// --- Whole-GPU checkpoint/resume --------------------------------------

/** Exported-JSON form of an application's metrics (the figures' data). */
std::string
jsonOf(const std::string &kernel, const RunMetrics &total,
       const std::vector<RunMetrics> &invocations)
{
    MetricsExporter e;
    e.addResult(kernel, "test", total, invocations);
    std::ostringstream os;
    e.writeJson(os);
    return os.str();
}

/** Equalizer tuned so hysteresis and epochs churn within short runs. */
EqualizerConfig
fastEqualizer()
{
    EqualizerConfig ecfg;
    ecfg.epochCycles = 512;
    ecfg.sampleInterval = 64;
    return ecfg;
}

struct MidKernelCase
{
    const char *kernel;
    int threads;
};

class MidKernelCheckpoint
    : public ::testing::TestWithParam<MidKernelCase>
{
};

/**
 * The core acceptance test: run an application under Equalizer and save
 * a checkpoint mid-way through the first kernel invocation (between two
 * hysteresis epochs). Restoring into a fresh GpuTop and finishing the
 * whole schedule must reproduce the uninterrupted run's exported
 * metrics byte for byte — at any thread count.
 */
TEST_P(MidKernelCheckpoint, ResumedRunIsByteIdentical)
{
    const auto [kernel_name, threads] = GetParam();
    const KernelParams &params = KernelZoo::byName(kernel_name).params;
    const GpuConfig gcfg = GpuConfig::gtx480();
    const PowerConfig pcfg = PowerConfig::gtx480();
    const PolicySpec policy =
        policies::equalizer(EqualizerMode::Performance, fastEqualizer());

    // Mid-epoch-3: pendingDir_/pendingCount_ are in flight.
    const Cycle save_cycle = 1800;

    // --- Donor run: save mid-kernel, then keep going uninterrupted.
    std::unique_ptr<ParallelExecutor> donor_exec;
    if (threads > 1)
        donor_exec = std::make_unique<ParallelExecutor>(threads);
    GpuTop donor(gcfg, pcfg);
    donor.setParallelExecutor(donor_exec.get());
    const auto donor_ctrl = policy.build();
    donor.setController(donor_ctrl.get());

    std::vector<std::uint8_t> saved;
    donor.setCycleObserver([&saved, save_cycle](GpuTop &g) {
        if (saved.empty() && g.smDomain().cycle() == save_cycle)
            saved = g.saveStateBuffer();
    });

    RunMetrics donor_total;
    donor_total.kernel = params.name;
    std::vector<RunMetrics> donor_invs;
    for (int inv = 0; inv < params.invocationCount(); ++inv) {
        SyntheticKernel launch(params, inv);
        RunMetrics m = donor.runKernel(launch);
        donor_total += m;
        donor_invs.push_back(std::move(m));
    }
    ASSERT_FALSE(saved.empty())
        << "first invocation shorter than the save cycle";

    // --- Restored run: fresh GPU + fresh controller, resume, finish.
    std::unique_ptr<ParallelExecutor> res_exec;
    if (threads > 1)
        res_exec = std::make_unique<ParallelExecutor>(threads);
    GpuTop restored(gcfg, pcfg);
    restored.setParallelExecutor(res_exec.get());
    const auto restored_ctrl = policy.build();
    restored.setController(restored_ctrl.get());
    restored.loadStateBuffer(saved);

    ASSERT_TRUE(restored.midKernel());
    EXPECT_EQ(restored.currentKernelName(), params.name);
    EXPECT_EQ(restored.smDomain().cycle(), save_cycle);

    RunMetrics restored_total;
    restored_total.kernel = params.name;
    std::vector<RunMetrics> restored_invs;
    {
        SyntheticKernel launch(params, 0);
        RunMetrics m = restored.resumeKernel(launch);
        restored_total += m;
        restored_invs.push_back(std::move(m));
    }
    for (int inv = 1; inv < params.invocationCount(); ++inv) {
        SyntheticKernel launch(params, inv);
        RunMetrics m = restored.runKernel(launch);
        restored_total += m;
        restored_invs.push_back(std::move(m));
    }

    EXPECT_EQ(jsonOf(params.name, donor_total, donor_invs),
              jsonOf(params.name, restored_total, restored_invs));
}

INSTANTIATE_TEST_SUITE_P(
    KernelZoo, MidKernelCheckpoint,
    ::testing::Values(MidKernelCase{"sgemm", 1}, MidKernelCase{"sgemm", 4},
                      MidKernelCase{"lbm", 1}, MidKernelCase{"lbm", 4},
                      MidKernelCase{"kmn", 1}, MidKernelCase{"kmn", 4}),
    [](const auto &info) {
        return std::string(info.param.kernel) + "_threads" +
               std::to_string(info.param.threads);
    });

TEST(Checkpoint, FileRoundTripMatchesBufferRoundTrip)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    GpuTop gpu(GpuConfig::gtx480(), PowerConfig::gtx480());
    SyntheticKernel launch(params, 0);
    gpu.runKernel(launch);

    const std::string path =
        ::testing::TempDir() + "eq_checkpoint_test.eqz";
    gpu.saveCheckpoint(path);

    GpuTop restored(GpuConfig::gtx480(), PowerConfig::gtx480());
    restored.loadCheckpoint(path);
    EXPECT_EQ(gpu.saveStateBuffer(), restored.saveStateBuffer());
    EXPECT_FALSE(restored.midKernel());
    std::remove(path.c_str());
}

TEST(CheckpointDeath, FingerprintMismatchIsFatal)
{
    GpuTop gpu(GpuConfig::gtx480(), PowerConfig::gtx480());
    const auto buf = gpu.saveStateBuffer();

    GpuConfig other = GpuConfig::gtx480();
    other.numSms = 4;
    EXPECT_EXIT(
        {
            GpuTop small(other, PowerConfig::gtx480());
            small.loadStateBuffer(buf);
        },
        ::testing::ExitedWithCode(1), "different configuration");
}

TEST(CheckpointDeath, ControllerMismatchIsFatalOnStrictLoad)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    GpuTop gpu(GpuConfig::gtx480(), PowerConfig::gtx480());
    const auto ctrl =
        policies::equalizer(EqualizerMode::Performance).build();
    gpu.setController(ctrl.get());
    SyntheticKernel launch(params, 0);
    gpu.runKernel(launch);
    const auto buf = gpu.saveStateBuffer();

    EXPECT_EXIT(
        {
            GpuTop other(GpuConfig::gtx480(), PowerConfig::gtx480());
            const auto dyncta = policies::dynCta().build();
            other.setController(dyncta.get());
            other.loadStateBuffer(buf);
        },
        ::testing::ExitedWithCode(1), "controller");
}

TEST(Checkpoint, ForkDropsMismatchedControllerState)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    GpuTop parent(GpuConfig::gtx480(), PowerConfig::gtx480());
    const auto ctrl =
        policies::equalizer(EqualizerMode::Performance).build();
    parent.setController(ctrl.get());
    SyntheticKernel launch(params, 0);
    parent.runKernel(launch);

    // The child runs a different policy: the stored equalizer state is
    // dropped, everything architectural transfers.
    GpuTop child(GpuConfig::gtx480(), PowerConfig::gtx480());
    child.forkFrom(parent);
    EXPECT_EQ(child.smDomain().cycle(), parent.smDomain().cycle());
    EXPECT_EQ(child.memorySystem().l2Hits(),
              parent.memorySystem().l2Hits());
}

TEST(CheckpointDeath, ResumeWithDifferentKernelIsFatal)
{
    const KernelParams &params = KernelZoo::byName("sgemm").params;
    GpuTop donor(GpuConfig::gtx480(), PowerConfig::gtx480());
    std::vector<std::uint8_t> saved;
    donor.setCycleObserver([&saved](GpuTop &g) {
        if (saved.empty() && g.smDomain().cycle() == 500)
            saved = g.saveStateBuffer();
    });
    SyntheticKernel launch(params, 0);
    donor.runKernel(launch);
    ASSERT_FALSE(saved.empty());

    EXPECT_EXIT(
        {
            GpuTop restored(GpuConfig::gtx480(), PowerConfig::gtx480());
            restored.loadStateBuffer(saved);
            SyntheticKernel other(KernelZoo::byName("lbm").params, 0);
            restored.resumeKernel(other);
        },
        ::testing::ExitedWithCode(1), "resume");
}

// --- Warm-forked sweeps -----------------------------------------------

/** A short multi-invocation schedule derived from a zoo kernel. */
KernelParams
sweepKernel()
{
    KernelParams p = KernelZoo::byName("sgemm").params;
    p.name = "sgemm-sweep";
    p.invocations.assign(3, InvocationMod{});
    return p;
}

TEST(WarmSweep, MatchesColdSweepPointForPoint)
{
    const KernelParams params = sweepKernel();
    const std::vector<PolicySpec> points = {
        policies::smHigh(),
        policies::staticBlocks(2),
        policies::equalizer(EqualizerMode::Performance, fastEqualizer()),
    };

    ExperimentRunner runner(GpuConfig::gtx480(), PowerConfig::gtx480(),
                            1);
    SweepResult cold =
        runner.runColdSweep(params, policies::baseline(), 2, points);
    SweepResult warm =
        runner.runWarmSweep(params, policies::baseline(), 2, points);

    ASSERT_EQ(cold.points.size(), points.size());
    ASSERT_EQ(warm.points.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(cold.points[i].policy, warm.points[i].policy);
        EXPECT_EQ(jsonOf(params.name, cold.points[i].total,
                         cold.points[i].invocations),
                  jsonOf(params.name, warm.points[i].total,
                         warm.points[i].invocations))
            << "point " << cold.points[i].policy;
    }

    // The warm sweep paid for the prefix once, the cold sweep N times;
    // snapshotAndReset keeps the intervals from leaking into each other.
    EXPECT_EQ(cold.stats.counterValue("sweep.prefix_invocations"),
              2u * points.size());
    EXPECT_EQ(warm.stats.counterValue("sweep.prefix_invocations"), 2u);
    EXPECT_EQ(warm.stats.counterValue("sweep.forks"), points.size());
}

} // namespace
} // namespace equalizer
