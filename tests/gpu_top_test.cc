/**
 * @file
 * Tests for the GPU top level: work distribution, clocking, VF requests,
 * metrics and determinism.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_top.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name = "t")
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

GpuConfig
smallGpu(int sms = 4)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    return cfg;
}

TEST(GpuTop, RunsTrivialKernelToCompletion)
{
    GpuTop gpu(smallGpu());
    ScriptedKernel k(info(8, 2, 2), {aluInst(), aluInst()});
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_GT(m.smCycles, 0u);
    EXPECT_GT(m.memCycles, 0u);
    EXPECT_EQ(m.instructions, 8u * 2u * 2u);
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_GT(m.totalJoules(), 0.0);
}

TEST(GpuTop, DistributesBlocksBreadthFirst)
{
    GpuTop gpu(smallGpu(4));
    // 6 long blocks over 4 SMs with capacity 4 each: breadth-first means
    // SMs get 2,2,1,1 — never 4,2,0,0.
    std::vector<WarpInstruction> script(3000, aluInst());
    ScriptedKernel k(info(6, 2, 4), script);
    std::vector<int> resident;
    bool captured = false;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (captured)
            return;
        captured = true;
        for (int s = 0; s < g.numSms(); ++s)
            resident.push_back(g.sm(s).residentBlocks());
    });
    gpu.runKernel(k);
    ASSERT_EQ(resident.size(), 4u);
    EXPECT_EQ(resident[0], 2);
    EXPECT_EQ(resident[1], 2);
    EXPECT_EQ(resident[2], 1);
    EXPECT_EQ(resident[3], 1);
}

TEST(GpuTop, DeterministicAcrossRuns)
{
    auto run_once = [] {
        GpuTop gpu(smallGpu());
        std::vector<WarpInstruction> script;
        for (int i = 0; i < 64; ++i) {
            script.push_back(loadInst(static_cast<Addr>(i) * 128));
            script.push_back(loadUse());
            script.push_back(aluInst());
        }
        ScriptedKernel k(info(12, 4, 4), script);
        return gpu.runKernel(k);
    };
    const RunMetrics a = run_once();
    const RunMetrics b = run_once();
    EXPECT_EQ(a.smCycles, b.smCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.dynamicJoules, b.dynamicJoules);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
}

TEST(GpuTop, VfRequestAppliesAfterVrmDelay)
{
    GpuTop gpu(smallGpu());
    std::vector<WarpInstruction> script(3000, aluInst());
    ScriptedKernel k(info(8, 2, 2), script);

    bool requested = false;
    Cycle request_cycle = 0;
    Cycle applied_cycle = 0;
    gpu.setCycleObserver([&](GpuTop &g) {
        const Cycle c = g.smDomain().cycle();
        if (!requested && c == 100) {
            g.requestVfState(PowerDomain::Sm, VfState::High);
            requested = true;
            request_cycle = c;
        }
        if (requested && applied_cycle == 0 &&
            g.smDomain().state() == VfState::High) {
            applied_cycle = c;
        }
    });
    gpu.runKernel(k);
    ASSERT_TRUE(requested);
    ASSERT_GT(applied_cycle, 0u);
    const Cycle delay = applied_cycle - request_cycle;
    EXPECT_GE(delay, vrmTransitionSmCycles);
    EXPECT_LE(delay, vrmTransitionSmCycles + 4);
}

TEST(GpuTop, HigherSmFrequencyFinishesComputeKernelFaster)
{
    std::vector<WarpInstruction> script(400, aluInst());
    ScriptedKernel k(info(16, 8, 4), script);

    GpuTop normal(smallGpu());
    const RunMetrics base = normal.runKernel(k);

    GpuTop boosted(smallGpu());
    boosted.requestVfState(PowerDomain::Sm, VfState::High);
    const RunMetrics fast = boosted.runKernel(k);

    EXPECT_LT(fast.seconds, base.seconds);
    // Issue-bound kernel: time scales ~1/f.
    EXPECT_NEAR(base.seconds / fast.seconds, 1.15, 0.03);
}

TEST(GpuTop, MetricsResidencyCoversRunTime)
{
    GpuTop gpu(smallGpu());
    std::vector<WarpInstruction> script(500, aluInst());
    ScriptedKernel k(info(8, 4, 4), script);
    const RunMetrics m = gpu.runKernel(k);
    Tick total = 0;
    for (int i = 0; i < numVfStates; ++i)
        total += m.smResidency[static_cast<std::size_t>(i)];
    EXPECT_NEAR(m.seconds,
                static_cast<double>(total) /
                    static_cast<double>(ticksPerSecond),
                1e-12);
}

TEST(GpuTop, ConsecutiveInvocationsAccumulateIndependentMetrics)
{
    GpuTop gpu(smallGpu());
    ScriptedKernel k(info(8, 2, 2), {aluInst(), aluInst()});
    const RunMetrics a = gpu.runKernel(k);
    const RunMetrics b = gpu.runKernel(k);
    EXPECT_EQ(a.instructions, b.instructions);
    // Second invocation metrics are a fresh delta, not cumulative.
    EXPECT_NEAR(static_cast<double>(a.smCycles),
                static_cast<double>(b.smCycles),
                static_cast<double>(a.smCycles) * 0.2 + 16.0);
}

TEST(GpuTop, SetAllTargetBlocksPropagates)
{
    GpuTop gpu(smallGpu());
    std::vector<WarpInstruction> script(1000, aluInst());
    ScriptedKernel k(info(64, 4, 8), script);
    bool checked = false;
    gpu.setCycleObserver([&](GpuTop &g) {
        if (checked || g.smDomain().cycle() != 50)
            return;
        checked = true;
        g.setAllTargetBlocks(2);
        for (int s = 0; s < g.numSms(); ++s)
            EXPECT_EQ(g.sm(s).targetBlocks(), 2);
    });
    gpu.runKernel(k);
    EXPECT_TRUE(checked);
}

TEST(GpuTop, MemoryClockTicksFasterThanSmClock)
{
    GpuTop gpu(smallGpu());
    std::vector<WarpInstruction> script(200, aluInst());
    ScriptedKernel k(info(8, 4, 4), script);
    const RunMetrics m = gpu.runKernel(k);
    const double ratio = static_cast<double>(m.memCycles) /
                         static_cast<double>(m.smCycles);
    EXPECT_NEAR(ratio, 924.0 / 700.0, 0.02);
}

TEST(GpuTopDeath, CycleLimitPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            GpuTop gpu(smallGpu(1));
            std::vector<WarpInstruction> script(100000, aluInst());
            ScriptedKernel k(info(64, 8, 8, "runaway"), script);
            gpu.runKernel(k, /*max_sm_cycles=*/500);
        },
        "cycle limit");
}

} // namespace
} // namespace equalizer
