/**
 * @file
 * Scheduler-policy and cross-SM memory behaviour tests: GTO vs LRR,
 * the texture path end to end, and L2-level sharing between SMs.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_top.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;
using testing::loadUse;

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name)
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

/** A small cache-friendly looping kernel. */
ScriptedKernel
loopingKernel(const char *name)
{
    return ScriptedKernel(info(8, 8, 4, name), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        const Addr base =
            (static_cast<Addr>(b) * 16 + static_cast<Addr>(w)) << 16;
        for (int rep = 0; rep < 20; ++rep)
            for (int l = 0; l < 6; ++l) {
                s.push_back(loadInst(base + static_cast<Addr>(l) * 128));
                s.push_back(loadUse());
                s.push_back(aluInst());
            }
        return s;
    });
}

TEST(SchedulerPolicy, BothPoliciesCompleteIdenticalWork)
{
    RunMetrics results[2];
    int i = 0;
    for (auto policy : {SchedulerPolicy::LooseRoundRobin,
                        SchedulerPolicy::GreedyThenOldest}) {
        GpuConfig cfg = GpuConfig::gtx480();
        cfg.numSms = 2;
        cfg.scheduler = policy;
        GpuTop gpu(cfg);
        auto k = loopingKernel("sched");
        results[i++] = gpu.runKernel(k);
    }
    EXPECT_EQ(results[0].instructions, results[1].instructions);
    EXPECT_GT(results[0].smCycles, 0u);
    EXPECT_GT(results[1].smCycles, 0u);
}

TEST(SchedulerPolicy, GtoIsDeterministicToo)
{
    auto run_once = [] {
        GpuConfig cfg = GpuConfig::gtx480();
        cfg.numSms = 2;
        cfg.scheduler = SchedulerPolicy::GreedyThenOldest;
        GpuTop gpu(cfg);
        auto k = loopingKernel("gto");
        return gpu.runKernel(k);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.smCycles, b.smCycles);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
}

TEST(TexturePath, EndToEndCompletionWithoutL1Traffic)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 2;
    GpuTop gpu(cfg);
    ScriptedKernel k(info(4, 4, 4, "tex"), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        const Addr base =
            (static_cast<Addr>(b) * 8 + static_cast<Addr>(w)) << 20;
        for (int i = 0; i < 40; ++i) {
            WarpInstruction tex = loadInst(base + static_cast<Addr>(i) * 128);
            tex.texture = true;
            s.push_back(tex);
            s.push_back(loadUse());
        }
        return s;
    });
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_EQ(m.instructions, 4u * 4u * 80u);
    EXPECT_EQ(m.l1Hits + m.l1Misses, 0u); // texture bypasses the L1
    EXPECT_GT(m.dramAccesses, 0u);        // but still reaches DRAM
}

TEST(L2Sharing, SecondSmHitsLinesFetchedByTheFirst)
{
    // Two SMs read the same region; the trailing accesses should find
    // the lines in L2 (fewer DRAM accesses than total L1 misses).
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 2;
    GpuTop gpu(cfg);
    ScriptedKernel k(info(2, 4, 1, "share"), [](BlockId b, int w) {
        std::vector<WarpInstruction> s;
        // Block 1 starts late (ALU prelude) so block 0's misses have
        // already filled the L2 by the time block 1 reads the same
        // 64 lines.
        if (b == 1)
            for (int i = 0; i < 3000; ++i)
                s.push_back(aluInst(true));
        for (int rep = 0; rep < 4; ++rep)
            for (int l = 0; l < 64; ++l) {
                s.push_back(loadInst(
                    0x100000 + static_cast<Addr>((l * 4 + w) % 64) * 128));
                s.push_back(loadUse());
            }
        return s;
    });
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_GT(m.l2Hits, 0u);
    EXPECT_LT(m.dramAccesses, m.l1Misses);
}

TEST(L2Sharing, DramRowLocalityVisibleForStreaming)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = 1;
    GpuTop gpu(cfg);
    // A single warp streaming sequential lines: within a partition the
    // lines share rows, so the DRAM row-hit rate must be high.
    ScriptedKernel k(info(1, 1, 1, "stream"), [](BlockId, int) {
        std::vector<WarpInstruction> s;
        for (int i = 0; i < 600; ++i) {
            s.push_back(loadInst(static_cast<Addr>(i) * 128));
            s.push_back(loadUse());
        }
        return s;
    });
    const RunMetrics m = gpu.runKernel(k);
    ASSERT_GT(m.dramAccesses, 0u);
    const double row_hit_rate =
        static_cast<double>(m.dramRowHits) /
        static_cast<double>(m.dramAccesses);
    EXPECT_GT(row_hit_rate, 0.7);
}

} // namespace
} // namespace equalizer
