/**
 * @file
 * Tests for the model extensions: shared memory with bank conflicts,
 * branch-divergence energy scaling, operand-collector port limits,
 * DRAM interface power-down, and concurrent kernel execution.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_top.hh"
#include "kernels/synthetic_kernel.hh"
#include "equalizer/equalizer.hh"
#include "test_streams.hh"

namespace equalizer
{
namespace
{

using testing::ScriptedKernel;
using testing::aluInst;
using testing::loadInst;

KernelInfo
info(int blocks, int wcta, int max_blocks, const char *name)
{
    KernelInfo k;
    k.name = name;
    k.totalBlocks = blocks;
    k.warpsPerBlock = wcta;
    k.maxBlocksPerSm = max_blocks;
    return k;
}

GpuConfig
smallGpu(int sms = 2)
{
    GpuConfig cfg = GpuConfig::gtx480();
    cfg.numSms = sms;
    return cfg;
}

WarpInstruction
sharedInst(int conflict_ways = 1)
{
    WarpInstruction i;
    i.op = OpClass::Shared;
    i.conflictWays = conflict_ways;
    return i;
}

// ---------------------------------------------------------- shared memory

TEST(SharedMemory, AccessesNeverTouchTheMemorySystem)
{
    GpuTop gpu(smallGpu(1));
    std::vector<WarpInstruction> script;
    for (int i = 0; i < 50; ++i) {
        script.push_back(sharedInst());
        script.push_back(aluInst(true));
    }
    ScriptedKernel k(info(2, 4, 2, "smem"), script);
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_EQ(m.l1Hits + m.l1Misses, 0u);
    EXPECT_EQ(m.dramAccesses, 0u);
    EXPECT_GT(gpu.energy().eventCount(EnergyEvent::SmSharedAccess), 0u);
}

TEST(SharedMemory, BankConflictsSerializeThePipe)
{
    auto run_with_conflicts = [](int ways) {
        GpuTop gpu(smallGpu(1));
        std::vector<WarpInstruction> script;
        for (int i = 0; i < 60; ++i)
            script.push_back(sharedInst(ways));
        ScriptedKernel k(info(2, 8, 2, "smem-conflict"), script);
        return gpu.runKernel(k).seconds;
    };
    const double clean = run_with_conflicts(1);
    const double conflicted = run_with_conflicts(8);
    // 8-way conflicts occupy the pipe 8x longer per access.
    EXPECT_GT(conflicted, clean * 3.0);
}

TEST(SharedMemory, ConsumerWaitsForSmemLatency)
{
    GpuTop gpu(smallGpu(1));
    // One warp, one shared access + dependent ALU: runtime is dominated
    // by smemLatency, not by a DRAM round trip.
    std::vector<WarpInstruction> script = {sharedInst(), aluInst(true)};
    ScriptedKernel k(info(1, 1, 1, "smem-dep"), script);
    const RunMetrics m = gpu.runKernel(k);
    EXPECT_GE(m.smCycles, gpu.config().smemLatency);
    EXPECT_LT(m.smCycles, gpu.config().smemLatency + 40);
}

// ------------------------------------------------------------- divergence

TEST(Divergence, PartialLaneMasksCutAluEnergyNotTime)
{
    auto run_with_lanes = [](int lanes) {
        GpuTop gpu(smallGpu(1));
        std::vector<WarpInstruction> script;
        for (int i = 0; i < 400; ++i) {
            WarpInstruction a = aluInst();
            a.activeLanes = lanes;
            script.push_back(a);
        }
        ScriptedKernel k(info(2, 4, 2, "div"), script);
        const RunMetrics m = gpu.runKernel(k);
        return std::pair<double, double>{
            m.seconds, gpu.energy().dynamicJoules(EnergyEvent::SmAluOp)};
    };
    const auto full = run_with_lanes(32);
    const auto half = run_with_lanes(16);
    EXPECT_NEAR(half.first, full.first, full.first * 0.02);
    EXPECT_NEAR(half.second / full.second, 0.5, 0.02);
}

// ----------------------------------------------------- register-file ports

TEST(RegisterFilePorts, FewPortsThrottleDualIssue)
{
    auto run_with_ports = [](int ports) {
        GpuConfig cfg = smallGpu(1);
        cfg.regReadPorts = ports;
        GpuTop gpu(cfg);
        std::vector<WarpInstruction> script(500, aluInst());
        ScriptedKernel k(info(4, 8, 4, "ports"), script);
        return gpu.runKernel(k).ipc();
    };
    const double wide = run_with_ports(8);
    const double narrow = run_with_ports(3); // one ALU issue per cycle
    EXPECT_NEAR(wide, 2.0, 0.1);
    EXPECT_NEAR(narrow, 1.0, 0.1);
}

// ------------------------------------------------------- DRAM power-down

TEST(DramPowerDown, IdlePartitionsEnterLowPowerState)
{
    MemConfig cfg = MemConfig::gtx480();
    cfg.dramPowerDownIdleCycles = 50;
    EnergyModel energy;
    DramPartition dram(cfg, 0, energy);
    Cycle now = 0;
    for (; now < 300; ++now)
        dram.tick(now);
    EXPECT_TRUE(dram.poweredDown());
    // Idle 300 cycles with threshold 50: ~250 powered-down cycles.
    EXPECT_GT(dram.poweredDownCycles(), 200u);
    EXPECT_LT(dram.poweredDownCycles(), 260u);
}

TEST(DramPowerDown, WakeupCostsExtraCycles)
{
    MemConfig cfg = MemConfig::gtx480();
    cfg.dramPowerDownIdleCycles = 50;
    EnergyModel energy;
    DramPartition dram(cfg, 0, energy);
    Cycle now = 0;
    for (; now < 200; ++now)
        dram.tick(now);
    ASSERT_TRUE(dram.poweredDown());

    MemAccess a;
    a.lineAddr = 0;
    dram.submit(a, now);
    Cycle done_at = 0;
    for (; now < 400 && done_at == 0; ++now)
        if (dram.tick(now))
            done_at = now;
    ASSERT_GT(done_at, 0u);
    // Row miss + power-up penalty.
    EXPECT_GE(done_at - 200, cfg.dramRowMissCycles + cfg.dramPowerUpCycles);
    EXPECT_FALSE(dram.poweredDown());
}

TEST(DramPowerDown, DisabledWhenThresholdIsZero)
{
    MemConfig cfg = MemConfig::gtx480();
    cfg.dramPowerDownIdleCycles = 0;
    EnergyModel energy;
    DramPartition dram(cfg, 0, energy);
    for (Cycle now = 0; now < 500; ++now)
        dram.tick(now);
    EXPECT_FALSE(dram.poweredDown());
    EXPECT_EQ(dram.poweredDownCycles(), 0u);
}

TEST(DramPowerDown, ReducesStaticEnergyOfComputeKernels)
{
    EnergyModel e;
    std::array<Tick, numVfStates> res{};
    res[static_cast<int>(VfState::Normal)] = ticksPerSecond;
    const double active = e.staticJoules(res, res, 0.0);
    const double mostly_down = e.staticJoules(res, res, 0.8);
    EXPECT_LT(mostly_down, active);
    const double saved = active - mostly_down;
    const double expected =
        e.dramStandbyWatts(VfState::Normal) * 0.8 *
        (1.0 - e.config().dramPowerDownFactor);
    EXPECT_NEAR(saved, expected, 1e-9);
}

// -------------------------------------------------- concurrent execution

TEST(ConcurrentKernels, PartitionsSmsAndCompletesBoth)
{
    GpuTop gpu(smallGpu(4));
    std::vector<WarpInstruction> alu_script(300, aluInst());
    ScriptedKernel a(info(8, 4, 4, "ka"), alu_script);
    std::vector<WarpInstruction> mem_script;
    for (int i = 0; i < 60; ++i) {
        mem_script.push_back(
            loadInst(static_cast<Addr>(i) * 128 * 7));
        mem_script.push_back(testing::loadUse());
    }
    ScriptedKernel b(info(8, 4, 4, "kb"), mem_script);

    const RunMetrics m = gpu.runKernelsConcurrent({&a, &b});
    EXPECT_EQ(m.kernel, "concurrent:ka:kb");
    const auto expected = 8u * 4u * 300u + 8u * 4u * 120u;
    EXPECT_EQ(m.instructions, expected);
    for (int s = 0; s < gpu.numSms(); ++s)
        EXPECT_TRUE(gpu.sm(s).idle());
}

TEST(ConcurrentKernels, MixedRunKeepsPerSmBlockTuningIndependent)
{
    // An Equalizer-controlled co-run: the cache-thrashing kernel's SMs
    // reduce their block target while the compute kernel's SMs stay at
    // maximum — per-SM decisions, as the paper motivates.
    GpuTop gpu(smallGpu(4));

    std::vector<WarpInstruction> alu_script(20000, aluInst());
    ScriptedKernel comp(info(8, 4, 8, "comp"), alu_script);

    ScriptedKernel thrash(
        info(32, 4, 8, "thrash"), [](BlockId b, int w) {
            std::vector<WarpInstruction> s;
            const Addr base =
                (static_cast<Addr>(b) * 64 + static_cast<Addr>(w)) << 24;
            for (int i = 0; i < 500; ++i) {
                WarpInstruction ld = loadInst(0);
                ld.transactionCount = 2;
                ld.lineAddrs[0] = base + static_cast<Addr>(i) * 256;
                ld.lineAddrs[1] = ld.lineAddrs[0] + 128;
                s.push_back(ld);
                s.push_back(testing::loadUse());
            }
            return s;
        });

    EqualizerEngine eq(
        EqualizerConfig{EqualizerMode::Performance, 128, 4096, 3, 2.0});
    gpu.setController(&eq);

    int min_thrash_target = 8;
    int min_comp_target = 8;
    gpu.setCycleObserver([&](GpuTop &g) {
        // SMs 0,2 run 'comp'; SMs 1,3 run 'thrash'.
        min_comp_target =
            std::min(min_comp_target, g.sm(0).targetBlocks());
        min_thrash_target =
            std::min(min_thrash_target, g.sm(1).targetBlocks());
    });
    gpu.runKernelsConcurrent({&comp, &thrash});

    EXPECT_LT(min_thrash_target, 8);
    EXPECT_EQ(min_comp_target, 8);
}

} // namespace
} // namespace equalizer
