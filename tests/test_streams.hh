/**
 * @file
 * Hand-built instruction streams and kernels for unit tests.
 */

#ifndef EQ_TESTS_TEST_STREAMS_HH
#define EQ_TESTS_TEST_STREAMS_HH

#include <functional>
#include <memory>
#include <vector>

#include "gpu/kernel_launch.hh"

namespace equalizer::testing
{

/** Plays back a fixed vector of instructions. */
class VectorStream : public InstructionStream
{
  public:
    explicit VectorStream(std::vector<WarpInstruction> insts)
        : insts_(std::move(insts))
    {
    }

    bool
    next(WarpInstruction &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }

  private:
    std::vector<WarpInstruction> insts_;
    std::size_t pos_ = 0;
};

/** A kernel whose warps all play the same scripted instruction list. */
class ScriptedKernel : public KernelLaunch
{
  public:
    ScriptedKernel(KernelInfo info, std::vector<WarpInstruction> script)
        : info_(std::move(info)), script_(std::move(script))
    {
    }

    /** Per-warp script variant: receives (block, warp_in_block). */
    using ScriptFn =
        std::function<std::vector<WarpInstruction>(BlockId, int)>;

    ScriptedKernel(KernelInfo info, ScriptFn fn)
        : info_(std::move(info)), fn_(std::move(fn))
    {
    }

    const KernelInfo &info() const override { return info_; }

    std::unique_ptr<InstructionStream>
    makeWarpStream(BlockId block, int warp_in_block) const override
    {
        if (fn_)
            return std::make_unique<VectorStream>(fn_(block, warp_in_block));
        return std::make_unique<VectorStream>(script_);
    }

  private:
    KernelInfo info_;
    std::vector<WarpInstruction> script_;
    ScriptFn fn_;
};

/** Shorthand builders. */
inline WarpInstruction
aluInst(bool depends_on_prev = false)
{
    WarpInstruction i;
    i.op = OpClass::Alu;
    i.dependsOnPrev = depends_on_prev;
    return i;
}

inline WarpInstruction
loadInst(Addr line, bool depends_on_loads_next = false)
{
    (void)depends_on_loads_next;
    WarpInstruction i;
    i.op = OpClass::Mem;
    i.transactionCount = 1;
    i.lineAddrs[0] = line;
    return i;
}

inline WarpInstruction
loadUse()
{
    WarpInstruction i;
    i.op = OpClass::Alu;
    i.dependsOnLoads = true;
    return i;
}

inline WarpInstruction
storeInst(Addr line)
{
    WarpInstruction i;
    i.op = OpClass::Mem;
    i.write = true;
    i.transactionCount = 1;
    i.lineAddrs[0] = line;
    return i;
}

inline WarpInstruction
syncInst()
{
    WarpInstruction i;
    i.op = OpClass::Sync;
    return i;
}

} // namespace equalizer::testing

#endif // EQ_TESTS_TEST_STREAMS_HH
