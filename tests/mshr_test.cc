/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace equalizer
{
namespace
{

TEST(Mshr, FirstMissAllocates)
{
    MshrFile m(2, 4);
    EXPECT_EQ(m.allocate(0x100, 1), MshrFile::Outcome::NewMiss);
    EXPECT_TRUE(m.tracking(0x100));
    EXPECT_EQ(m.outstanding(), 1);
}

TEST(Mshr, SecondMissMerges)
{
    MshrFile m(2, 4);
    m.allocate(0x100, 1);
    EXPECT_EQ(m.allocate(0x100, 2), MshrFile::Outcome::Merged);
    EXPECT_EQ(m.outstanding(), 1);
}

TEST(Mshr, FullFileRejectsNewLines)
{
    MshrFile m(2, 4);
    m.allocate(0x100, 1);
    m.allocate(0x200, 2);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.allocate(0x300, 3), MshrFile::Outcome::NoEntry);
    // Merging into an existing entry still works while full.
    EXPECT_EQ(m.allocate(0x100, 4), MshrFile::Outcome::Merged);
}

TEST(Mshr, MergeListLimitEnforced)
{
    MshrFile m(4, 2);
    m.allocate(0x100, 1);
    EXPECT_EQ(m.allocate(0x100, 2), MshrFile::Outcome::Merged);
    EXPECT_EQ(m.allocate(0x100, 3), MshrFile::Outcome::NoMerge);
}

TEST(Mshr, FillReturnsAllWaitersInOrder)
{
    MshrFile m(4, 4);
    m.allocate(0x100, 5);
    m.allocate(0x100, 6);
    m.allocate(0x100, 7);
    const auto waiters = m.fill(0x100);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0], 5);
    EXPECT_EQ(waiters[1], 6);
    EXPECT_EQ(waiters[2], 7);
    EXPECT_FALSE(m.tracking(0x100));
    EXPECT_EQ(m.outstanding(), 0);
}

TEST(Mshr, FillUnknownLineReturnsEmpty)
{
    MshrFile m(4, 4);
    EXPECT_TRUE(m.fill(0xdead).empty());
}

TEST(Mshr, ClearDropsEverything)
{
    MshrFile m(4, 4);
    m.allocate(0x100, 1);
    m.clear();
    EXPECT_EQ(m.outstanding(), 0);
    EXPECT_FALSE(m.tracking(0x100));
}

TEST(Mshr, FillFreesCapacityForNewMisses)
{
    MshrFile m(1, 4);
    m.allocate(0x100, 1);
    EXPECT_EQ(m.allocate(0x200, 2), MshrFile::Outcome::NoEntry);
    m.fill(0x100);
    EXPECT_EQ(m.allocate(0x200, 2), MshrFile::Outcome::NewMiss);
}

} // namespace
} // namespace equalizer
